//! `bwaves` — blast-wave CFD, a blocked dense solver.
//!
//! The original program sweeps several large 3-D state arrays with unit and
//! small strides inside a block-implicit solver, plus a heavily reused
//! working block. Memory character: large streaming footprint, very high
//! stride predictability, moderate store share.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::synth::{LineTouches, Region, SequentialStream, WeightedMix, ZipfOverRecords};

const BASE: u64 = 0x01_0000_0000;

/// Builds the bwaves-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let big = scale.bytes(8 << 20);
    let coeff = scale.bytes(4 << 20);
    let hot = scale.bytes(256 << 10);

    // State array Q: element-wise read sweep.
    let q = SequentialStream::new(Region::new(BASE, big), 8, 0x1000, 0, 2).with_repeats(3);
    // Residual array R: read-modify-write sweep.
    let r = SequentialStream::new(Region::new(BASE + 0x1_0000_0000, big), 8, 0x1040, 3, 2)
        .with_repeats(2);
    // Jacobian blocks: block-strided (one touch per cache line).
    let jac = SequentialStream::new(Region::new(BASE + 0x2_0000_0000, coeff), 64, 0x1080, 0, 1);
    // Hot solver block: small, reused every iteration.
    let blk = SequentialStream::new(Region::new(BASE + 0x3_0000_0000, hot), 8, 0x10c0, 6, 2)
        .with_repeats(3);
    // Boundary/coefficient hot set: skewed reuse over an LLC-scale region
    // (hot lines resident in the lower levels, the tail missing) — the
    // per-block solver revisits boundary blocks far more often than bulk.
    let work = LineTouches::new(
        ZipfOverRecords::new(
            Region::new(BASE + 0x4_0000_0000, scale.bytes(3 << 20)),
            64,
            0.85,
            seed_for(0xb3a7e5, core) ^ 5,
            0x1100,
            0.25,
            2,
        ),
        3,
    );

    boxed(WeightedMix::new(
        vec![
            Box::new(q),
            Box::new(r),
            Box::new(jac),
            Box::new(blk),
            Box::new(work),
        ],
        &[0.28, 0.22, 0.05, 0.30, 0.15],
        seed_for(0xb3a7e5, core),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_bwaves() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.85, 0.99), (0.75, 1.0), 256 << 10);
        assert!(stats.store_fraction() > 0.05 && stats.store_fraction() < 0.4);
    }

    #[test]
    fn cores_share_structure_but_differ_in_interleaving() {
        let a: Vec<_> = trace(0, Scale::Smoke).take(50).collect();
        let b: Vec<_> = trace(1, Scale::Smoke).take(50).collect();
        assert_ne!(a, b, "core seeds must decorrelate the mixes");
    }
}
