//! `GemsFDTD` — finite-difference time-domain electromagnetics.
//!
//! The solver sweeps 3-D field grids (E and H) with a 7-point stencil,
//! alternating read sweeps of one grid with writes to the other. Memory
//! character: large grids streamed plane-by-plane, strong short-range reuse
//! from the z±1 neighbours, plane-distance reuse caught by mid-level
//! caches, very high stride predictability.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::synth::{LineTouches, Region, Stencil3D, WeightedMix, ZipfOverRecords};

const E_BASE: u64 = 0x02_0000_0000;
const H_BASE: u64 = 0x02_8000_0000;
const MAT_BASE: u64 = 0x02_f000_0000;

/// Grid dimensions at demo scale (≈ 6.8 MB per grid at 8 B/element).
const DEMO_DIMS: (u64, u64, u64) = (96, 96, 96);

/// Builds the GemsFDTD-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let (nx, ny, nz) = DEMO_DIMS;
    let f = match scale {
        Scale::Smoke => 4,
        Scale::Demo => 1,
        Scale::Paper => 1,
    };
    // Paper scale grows the grid ~16× in volume (2.5× per axis).
    let (nx, ny, nz) = if scale == Scale::Paper {
        (nx * 5 / 2, ny * 5 / 2, nz * 5 / 2)
    } else {
        (nx / f, ny / f, nz / f)
    };
    // Update E from H; the stencil writes the E grid.
    let stencil = Stencil3D::new(H_BASE, E_BASE, (nx, ny, nz), 8, 0x2000, 2);
    // Source/material parameter table: skewed lookups per cell class.
    let materials = LineTouches::new(
        ZipfOverRecords::new(
            Region::new(MAT_BASE, scale.bytes(2 << 20)),
            64,
            0.9,
            seed_for(0x6e3500, core),
            0x2100,
            0.1,
            2,
        ),
        2,
    );
    boxed(WeightedMix::new(
        vec![Box::new(stencil), Box::new(materials)],
        &[0.85, 0.15],
        seed_for(0x6e3500, core) ^ 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};
    use mem_trace::stats::TraceStats;

    #[test]
    fn character_matches_gemsfdtd() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.5, 0.95), (0.7, 1.0), 256 << 10);
        // Mostly the stencil's one store per 8 accesses.
        assert!(stats.store_fraction() > 0.08 && stats.store_fraction() < 0.18);
    }

    #[test]
    fn footprint_is_two_grids() {
        let stats = TraceStats::measure(trace(0, Scale::Smoke), 400_000);
        // Smoke grid 24³ × 8 B ≈ 110 KB per grid; footprint must cover both.
        assert!(stats.footprint_bytes() > 150 << 10);
    }
}
