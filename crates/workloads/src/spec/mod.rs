//! SPEC-2006-like kernel generators.
//!
//! One module per benchmark from the paper's subset. Each documents the
//! memory structure of the original program and builds a stream with the
//! same character from the `mem_trace::synth` primitives (or a bespoke
//! kernel where the structure demands it, e.g. `mcf`'s pointer chasing).
//!
//! Region base addresses are distinct per benchmark so that the `mix`
//! workload's per-core streams stay recognizable in diagnostics; the
//! simulator additionally offsets each core's whole address space.

pub mod astar;
pub mod bwaves;
pub mod cactusadm;
pub mod gemsfdtd;
pub mod lbm;
pub mod mcf;
pub mod milc;
pub mod soplex;

use crate::registry::DynTrace;
use mem_trace::record::TraceRecord;

/// Boxes a concrete generator as a [`DynTrace`].
pub(crate) fn boxed<T>(t: T) -> DynTrace
where
    T: Iterator<Item = TraceRecord> + Send + 'static,
{
    Box::new(t)
}

/// Mixes a benchmark seed with the core id deterministically.
pub(crate) fn seed_for(base: u64, core: usize) -> u64 {
    base ^ (core as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::registry::DynTrace;
    use crate::scale::Scale;
    use mem_trace::stats::TraceStats;

    /// Asserts the properties every workload needs for the evaluation: a
    /// growing footprint (full-run footprints exceed the LLC; sweep-style
    /// kernels only reveal theirs over millions of references, so the
    /// threshold for this short sample is per-benchmark), a plausible
    /// L1-like short-reuse band, and a non-degenerate store mix.
    pub fn check_workload(
        trace: DynTrace,
        refs: usize,
        reuse_band: (f64, f64),
        stride_band: (f64, f64),
        min_footprint: u64,
    ) -> TraceStats {
        let stats = TraceStats::measure(trace, refs);
        assert_eq!(stats.records as usize, refs, "generator ended early");
        assert!(
            stats.footprint_bytes() > min_footprint,
            "footprint {} below {min_footprint}",
            stats.footprint_bytes()
        );
        let reuse = stats.short_reuse_fraction();
        assert!(
            reuse >= reuse_band.0 && reuse <= reuse_band.1,
            "short-reuse {reuse:.3} outside {reuse_band:?}"
        );
        let stride = stats.stride_predictability();
        assert!(
            stride >= stride_band.0 && stride <= stride_band.1,
            "stride predictability {stride:.3} outside {stride_band:?}"
        );
        stats
    }

    /// Standard scale/refs for generator tests.
    pub fn demo_sample() -> (Scale, usize) {
        (Scale::Demo, 120_000)
    }
}
