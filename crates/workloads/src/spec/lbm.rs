//! `lbm` — Lattice-Boltzmann fluid dynamics.
//!
//! The classic two-lattice formulation: every timestep streams the whole
//! source lattice (19 distribution values per cell) and writes the
//! destination lattice, then the roles swap. Memory character: two very
//! large arrays, almost pure streaming, ~40% stores, near-perfect stride
//! predictability — the poster child for stride prefetching.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::synth::{LineTouches, Region, SequentialStream, WeightedMix, ZipfOverRecords};

const SRC: u64 = 0x04_0000_0000;
const DST: u64 = 0x04_8000_0000;
const FLAGS: u64 = 0x04_f000_0000;
const OBSTACLES: u64 = 0x04_e000_0000;

/// Builds the lbm-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let lattice = scale.bytes(12 << 20);
    let flags = scale.bytes(512 << 10);

    // Read the source lattice cell by cell (19 doubles ≈ two cache lines).
    let src = SequentialStream::new(Region::new(SRC, lattice), 8, 0x4000, 0, 2).with_repeats(3);
    // Write the destination lattice (store stream).
    let dst = SequentialStream::new(Region::new(DST, lattice), 8, 0x4040, 1, 2).with_repeats(2);
    // Cell-type flags, one byte-ish per cell → block stride.
    let flags = SequentialStream::new(Region::new(FLAGS, flags), 64, 0x4080, 0, 2);

    // Obstacle/boundary cells: revisited every step (collision handling),
    // skewed toward a small hot set that lives in the lower levels.
    let obstacles = LineTouches::new(
        ZipfOverRecords::new(
            Region::new(OBSTACLES, scale.bytes(2 << 20)),
            64,
            0.9,
            seed_for(0x1b3d00, core) ^ 3,
            0x40c0,
            0.3,
            2,
        ),
        2,
    );

    boxed(WeightedMix::new(
        vec![
            Box::new(src),
            Box::new(dst),
            Box::new(flags),
            Box::new(obstacles),
        ],
        &[0.44, 0.36, 0.05, 0.15],
        seed_for(0x1b3d00, core),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_lbm() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.83, 0.99), (0.75, 1.0), 256 << 10);
        // The destination stream is all stores: ≈ 42% store share.
        assert!(stats.store_fraction() > 0.3 && stats.store_fraction() < 0.55);
    }

    #[test]
    fn footprint_covers_both_lattices() {
        use mem_trace::stats::TraceStats;
        let stats = TraceStats::measure(trace(0, Scale::Demo), 4_000_000);
        assert!(stats.footprint_bytes() > 10 << 20);
    }
}
