//! `milc` — lattice QCD (MIMD Lattice Computation).
//!
//! Sweeps a 4-D space-time lattice; each site update reads SU(3) gauge-link
//! matrices (3×3 complex doubles = 144 B) for several directions and writes
//! the site's result. Memory character: multiple large arrays walked with a
//! constant record stride, modest compute gaps, mostly loads.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::synth::{LineTouches, Region, SequentialStream, WeightedMix, ZipfOverRecords};

const LINKS: u64 = 0x06_0000_0000;
const SITES: u64 = 0x06_8000_0000;

/// SU(3) matrix record: 18 doubles (the dense-sweep granularity).
pub const SU3_BYTES: u64 = 144;

/// Builds the milc-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let link_bytes = scale.bytes(5 << 20);
    let site_bytes = scale.bytes(4 << 20);

    // Four direction link arrays. The kernel reads every element of each
    // SU(3) record (18 doubles), so the sweep is dense: unit (8 B) stride
    // with the usual 7-of-8 in-line reuse, exactly like the real su3_mat
    // loads.
    let mut sources: Vec<Box<dyn Iterator<Item = mem_trace::TraceRecord> + Send>> = Vec::new();
    let mut weights = Vec::new();
    for dir in 0..4u64 {
        let base = LINKS + dir * 0x1000_0000;
        sources.push(Box::new(
            SequentialStream::new(Region::new(base, link_bytes), 8, 0x6000 + dir * 0x40, 0, 3)
                .with_repeats(2),
        ));
        weights.push(0.17);
    }
    // Site results: unit-stride read-modify-write.
    sources.push(Box::new(
        SequentialStream::new(Region::new(SITES, site_bytes), 8, 0x6200, 2, 3).with_repeats(2),
    ));
    weights.push(0.16);
    // Staple accumulators: skewed reuse over an LLC-scale region (lattice
    // sites near the active time slice are revisited across directions).
    sources.push(Box::new(LineTouches::new(
        ZipfOverRecords::new(
            Region::new(SITES + 0x1000_0000, scale.bytes(3 << 20)),
            64,
            0.9,
            seed_for(0x313c00, core) ^ 9,
            0x6300,
            0.3,
            2,
        ),
        3,
    )));
    weights.push(0.16);

    boxed(WeightedMix::new(
        sources,
        &weights,
        seed_for(0x313c00, core),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_milc() {
        let (scale, refs) = demo_sample();
        // Record-strided link reads rarely revisit a line; the site stream
        // provides most short reuse. Strides are perfectly regular.
        let stats = check_workload(trace(0, scale), refs, (0.7, 0.95), (0.75, 1.0), 256 << 10);
        assert!(stats.store_fraction() > 0.08 && stats.store_fraction() < 0.3);
    }

    #[test]
    fn links_dominate_footprint() {
        use mem_trace::stats::TraceStats;
        let stats = TraceStats::measure(trace(0, Scale::Demo), 2_000_000);
        assert!(stats.footprint_bytes() > 2 << 20);
    }
}
