//! `cactusADM` — numerical relativity (ADM formulation), the Cactus
//! BenchADM kernel.
//!
//! Evolves Einstein field variables on a 3-D grid: a stencil over the
//! metric tensor components plus streaming reads of many per-point
//! coefficient arrays. Compared with GemsFDTD the grid is flatter and each
//! point touches more auxiliary state, diluting short-range reuse.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::synth::{
    LineTouches, Region, SequentialStream, Stencil3D, WeightedMix, ZipfOverRecords,
};

const GRID_IN: u64 = 0x03_0000_0000;
const GRID_OUT: u64 = 0x03_4000_0000;
const COEFF: u64 = 0x03_8000_0000;

/// Builds the cactusADM-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let (nx, ny, nz) = match scale {
        Scale::Smoke => (24, 24, 12),
        Scale::Demo => (128, 96, 48),
        Scale::Paper => (320, 240, 120),
    };
    let coeff_bytes = scale.bytes(6 << 20);

    let stencil = Stencil3D::new(GRID_IN, GRID_OUT, (nx, ny, nz), 8, 0x3000, 3);
    // Coefficient arrays streamed alongside the sweep (unit stride).
    let coeff = SequentialStream::new(Region::new(COEFF, coeff_bytes), 8, 0x3100, 0, 2);
    // Horizon/gauge lookup tables: skewed reuse, LLC-resident head.
    let tables = LineTouches::new(
        ZipfOverRecords::new(
            Region::new(COEFF + 0x1000_0000, scale.bytes(2 << 20)),
            64,
            0.9,
            seed_for(0xcac705, core) ^ 7,
            0x3200,
            0.15,
            2,
        ),
        2,
    );

    boxed(WeightedMix::new(
        vec![Box::new(stencil), Box::new(coeff), Box::new(tables)],
        &[0.55, 0.30, 0.15],
        seed_for(0xcac705, core),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_cactusadm() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.5, 0.95), (0.7, 1.0), 256 << 10);
        assert!(stats.store_fraction() > 0.04 && stats.store_fraction() < 0.15);
    }

    #[test]
    fn scales_change_grid_volume() {
        use mem_trace::stats::TraceStats;
        let small = TraceStats::measure(trace(0, Scale::Smoke), 60_000);
        let demo = TraceStats::measure(trace(0, Scale::Demo), 60_000);
        assert!(demo.footprint_bytes() > small.footprint_bytes());
    }
}
