//! `astar` — A* path-finding over large game maps.
//!
//! Expands nodes from a priority queue: the open list's head region is hot
//! (heavily re-touched), successors scatter over the map with mild
//! locality, and the visited/cost maps take unpredictable single-line hits.
//! Memory character: skewed reuse + random component, little stride
//! regularity beyond the queue maintenance.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::record::TraceRecord;
use mem_trace::synth::{RandomInRegion, Region, SequentialStream, WeightedMix, ZipfOverRecords};

/// Expands every record of an inner stream into three same-line field
/// accesses (offset +0, +16, +32), as a node expansion does.
struct FieldExpand<T> {
    inner: T,
    current: Option<TraceRecord>,
    phase: u8,
}

impl<T> FieldExpand<T> {
    fn new(inner: T) -> Self {
        Self {
            inner,
            current: None,
            phase: 0,
        }
    }
}

impl<T: Iterator<Item = TraceRecord>> Iterator for FieldExpand<T> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.phase == 0 || self.current.is_none() {
            self.current = Some(self.inner.next()?);
        }
        let base = self.current.expect("set above");
        let rec = match self.phase {
            0 => base,
            1 => TraceRecord::new(base.pc + 4, base.addr + 16, base.op, 1),
            _ => TraceRecord::new(base.pc + 8, base.addr + 32, base.op, 2),
        };
        self.phase = (self.phase + 1) % 3;
        Some(rec)
    }
}

const MAP: u64 = 0x08_0000_0000;
const COSTS: u64 = 0x08_8000_0000;
const HEAP: u64 = 0x08_f000_0000;

/// Builds the astar-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let map_bytes = scale.bytes(12 << 20);
    let cost_bytes = scale.bytes(6 << 20);
    let heap_bytes = scale.bytes(192 << 10);
    let seed = seed_for(0xa57a00, core);

    // Node expansions: popular map regions dominate (corridors, frontiers).
    // Each expansion reads the node's coordinates, cost, and successor list
    // head — three fields in the node's cache line.
    let expand = FieldExpand::new(ZipfOverRecords::new(
        Region::new(MAP, map_bytes),
        64,
        1.05,
        seed ^ 2,
        0x8000,
        0.0,
        2,
    ));
    // Cost/visited map updates: uniform scatter, half stores.
    let costs = RandomInRegion::new(Region::new(COSTS, cost_bytes), seed ^ 3, 0x8040, 0.5, 2, 8);
    // Priority-queue maintenance: tight sequential churn with stores.
    let heap = SequentialStream::new(Region::new(HEAP, heap_bytes), 8, 0x8080, 3, 2);

    boxed(WeightedMix::new(
        vec![Box::new(expand), Box::new(costs), Box::new(heap)],
        &[0.45, 0.12, 0.43],
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_astar() {
        let (scale, refs) = demo_sample();
        let stats = check_workload(trace(0, scale), refs, (0.6, 0.9), (0.25, 0.75), 1 << 20);
        assert!(stats.store_fraction() > 0.08 && stats.store_fraction() < 0.4);
    }

    #[test]
    fn map_footprint_exceeds_llc() {
        use mem_trace::stats::TraceStats;
        let stats = TraceStats::measure(trace(0, Scale::Demo), 2_000_000);
        assert!(stats.footprint_bytes() > 4 << 20);
    }
}
