//! `mcf` — single-depot vehicle scheduling via network simplex.
//!
//! The benchmark famous for destroying memory hierarchies: the network
//! simplex walks linked node/arc structures whose traversal order is data
//! dependent and effectively random at scale. Each visited node's fields
//! are then touched with spatial locality before the walk jumps on.
//!
//! We reproduce that shape with a bespoke kernel: node visits scatter
//! uniformly over a pool far larger than the per-core LLC share (the
//! traversal order of the real program is data-dependent, not cyclic, so
//! uniform selection is the right stand-in — a fixed permutation cycle
//! would trigger LRU's pathological 0%-hit corner instead of mcf's
//! characteristic low-but-nonzero lower-level hit rates). Each visit
//! expands into several same-node field accesses: loads of the adjacent
//! arc/potential fields and an occasional store to the flow field.

use super::{boxed, seed_for};
use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::record::{MemOp, TraceRecord};

const POOL: u64 = 0x05_0000_0000;
/// Node record size: two cache lines, like mcf's node + spill of arcs.
const NODE_BYTES: u64 = 128;

/// Emits node visits with per-node field locality.
struct McfTrace {
    nodes: u64,
    state: u64,
    node_addr: u64,
    phase: u8,
    visits: u64,
}

impl McfTrace {
    #[inline]
    fn next_node(&mut self) -> u64 {
        // xorshift64*: serially dependent (each pick feeds the next), like
        // following data-dependent pointers.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 24) % self.nodes
    }
}

impl Iterator for McfTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let rec = match self.phase {
            0 => {
                // Jump to the next node: the serially-dependent load of the
                // linking pointer.
                let n = self.next_node();
                self.node_addr = POOL + n * NODE_BYTES;
                self.visits += 1;
                TraceRecord::new(0x5000, self.node_addr, MemOp::Load, 3)
            }
            // Arc/potential/cost fields of the first line.
            1 => TraceRecord::new(0x5004, self.node_addr + 8, MemOp::Load, 2),
            2 => TraceRecord::new(0x5008, self.node_addr + 16, MemOp::Load, 1),
            3 => TraceRecord::new(0x500c, self.node_addr + 24, MemOp::Load, 2),
            4 => TraceRecord::new(0x5010, self.node_addr + 40, MemOp::Load, 2),
            // Spill line: adjacent arcs.
            5 => TraceRecord::new(0x5014, self.node_addr + 64, MemOp::Load, 2),
            6 => TraceRecord::new(0x5018, self.node_addr + 72, MemOp::Load, 1),
            7 => TraceRecord::new(0x501c, self.node_addr + 88, MemOp::Load, 2),
            8 => TraceRecord::new(0x5020, self.node_addr + 104, MemOp::Load, 2),
            _ => {
                // Flow update on every third visited node.
                let op = if self.visits.is_multiple_of(3) {
                    MemOp::Store
                } else {
                    MemOp::Load
                };
                TraceRecord::new(0x5024, self.node_addr + 48, op, 2)
            }
        };
        self.phase = (self.phase + 1) % 10;
        Some(rec)
    }
}

/// Builds the mcf-like trace for one core.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    // Demo: 4 MB/core pool (32 MB across 8 cores vs the 8 MB LLC).
    let nodes = scale.count(32_768);
    boxed(McfTrace {
        nodes,
        state: seed_for(0x3cf000, core) | 1,
        node_addr: POOL,
        phase: 0,
        visits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::{check_workload, demo_sample};

    #[test]
    fn character_matches_mcf() {
        let (scale, refs) = demo_sample();
        // 8 of 10 accesses hit the visited node's two lines, and the node
        // sequence is unpredictable.
        let stats = check_workload(trace(0, scale), refs, (0.65, 0.9), (0.0, 0.25), 1 << 20);
        assert!(stats.store_fraction() > 0.03 && stats.store_fraction() < 0.15);
    }

    #[test]
    fn pool_exceeds_per_core_llc_share() {
        use mem_trace::stats::TraceStats;
        let stats = TraceStats::measure(trace(0, Scale::Demo), 2_000_000);
        // 4 MB/core: 8 copies (32 MB) heavily over-commit the 8 MB LLC.
        assert!(stats.footprint_bytes() > 3 << 20);
    }

    #[test]
    fn field_accesses_follow_the_hop() {
        let recs: Vec<_> = trace(0, Scale::Smoke).take(12).collect();
        let node = recs[0].addr;
        assert_eq!(recs[1].addr, node + 8);
        assert_eq!(recs[5].addr, node + 64);
        assert_ne!(recs[10].addr, node, "next visit jumps elsewhere");
    }

    #[test]
    fn node_sequence_revisits_eventually() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut revisit = false;
        for r in trace(0, Scale::Smoke).take(100_000) {
            if r.pc == 0x5000 && !seen.insert(r.addr) {
                revisit = true;
                break;
            }
        }
        assert!(revisit, "uniform selection must revisit nodes (LLC reuse)");
    }
}
