//! The workload registry: the paper's 12 evaluation workloads by name.

use crate::scale::Scale;
use crate::{graph500, pmf, spec};
use mem_trace::record::TraceRecord;

/// A boxed trace generator handed to the simulator, one per core.
pub type DynTrace = Box<dyn Iterator<Item = TraceRecord> + Send>;

/// The paper's workloads (Figures 6–15 x-axis, plus `average` computed by
/// the harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPEC CPU2006 410.bwaves.
    Bwaves,
    /// SPEC CPU2006 459.GemsFDTD.
    GemsFdtd,
    /// SPEC CPU2006 470.lbm.
    Lbm,
    /// SPEC CPU2006 429.mcf.
    Mcf,
    /// SPEC CPU2006 433.milc.
    Milc,
    /// SPEC CPU2006 450.soplex.
    Soplex,
    /// SPEC CPU2006 473.astar.
    Astar,
    /// SPEC CPU2006 436.cactusADM.
    CactusAdm,
    /// One different SPEC benchmark per core (cache-interference study).
    Mix,
    /// Probabilistic matrix factorization (GraphLab in the paper).
    Pmf,
    /// Graph500 BFS (Combinatorial BLAS in the paper).
    Blas,
}

impl Benchmark {
    /// All workloads in the paper's figure order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Bwaves,
        Benchmark::GemsFdtd,
        Benchmark::Lbm,
        Benchmark::Mcf,
        Benchmark::Milc,
        Benchmark::Soplex,
        Benchmark::Astar,
        Benchmark::CactusAdm,
        Benchmark::Mix,
        Benchmark::Pmf,
        Benchmark::Blas,
    ];

    /// The eight SPEC benchmarks (the `mix` rotation).
    pub const SPEC: [Benchmark; 8] = [
        Benchmark::Bwaves,
        Benchmark::GemsFdtd,
        Benchmark::Lbm,
        Benchmark::Mcf,
        Benchmark::Milc,
        Benchmark::Soplex,
        Benchmark::Astar,
        Benchmark::CactusAdm,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bwaves => "bwaves",
            Benchmark::GemsFdtd => "GemsFDTD",
            Benchmark::Lbm => "lbm",
            Benchmark::Mcf => "mcf",
            Benchmark::Milc => "milc",
            Benchmark::Soplex => "soplex",
            Benchmark::Astar => "astar",
            Benchmark::CactusAdm => "cactusADM",
            Benchmark::Mix => "mix",
            Benchmark::Pmf => "pmf",
            Benchmark::Blas => "blas",
        }
    }

    /// Parses a figure name back to the benchmark (case-insensitive).
    pub fn from_name(s: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
    }

    /// Average CPI of the non-memory instructions, used by the paper's
    /// timing model ("we estimate the timing of each instruction using the
    /// average CPI of each application"). Documented estimates in line with
    /// published SPEC characterizations: memory-bound codes burn issue
    /// slots, dense FP codes approach 1.
    pub fn avg_cpi(self) -> f64 {
        match self {
            Benchmark::Bwaves => 1.1,
            Benchmark::GemsFdtd => 1.3,
            Benchmark::Lbm => 1.2,
            Benchmark::Mcf => 2.2,
            Benchmark::Milc => 1.4,
            Benchmark::Soplex => 1.5,
            Benchmark::Astar => 1.8,
            Benchmark::CactusAdm => 1.2,
            Benchmark::Mix => 1.5,
            Benchmark::Pmf => 1.4,
            Benchmark::Blas => 1.8,
        }
    }

    /// Builds the trace generator for one core. For [`Benchmark::Mix`],
    /// core `i` runs the `i`-th SPEC benchmark, as in the paper's mix
    /// simulation ("each of the 8 cores is running a different SPEC
    /// application").
    pub fn trace(self, core: usize, scale: Scale) -> DynTrace {
        match self {
            Benchmark::Bwaves => spec::bwaves::trace(core, scale),
            Benchmark::GemsFdtd => spec::gemsfdtd::trace(core, scale),
            Benchmark::Lbm => spec::lbm::trace(core, scale),
            Benchmark::Mcf => spec::mcf::trace(core, scale),
            Benchmark::Milc => spec::milc::trace(core, scale),
            Benchmark::Soplex => spec::soplex::trace(core, scale),
            Benchmark::Astar => spec::astar::trace(core, scale),
            Benchmark::CactusAdm => spec::cactusadm::trace(core, scale),
            Benchmark::Mix => Benchmark::SPEC[core % Benchmark::SPEC.len()].trace(core, scale),
            Benchmark::Pmf => pmf::trace(core, scale),
            Benchmark::Blas => graph500::trace(core, scale),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Any registered workload: a synthetic generator by benchmark name, or a
/// recorded trace file (`file:PATH[:dup|:interleave|:range]` spec).
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// A paper benchmark driven by its kernel generator.
    Synth(Benchmark),
    /// A recorded v2 trace file, shared across cores.
    File(std::sync::Arc<crate::file::TraceFileWorkload>),
}

impl WorkloadSource {
    /// Resolves a workload spec: a benchmark name from the registry, or a
    /// `file:` spec (which opens and validates the file).
    pub fn parse(spec: &str) -> Result<WorkloadSource, String> {
        if let Some(b) = Benchmark::from_name(spec) {
            return Ok(WorkloadSource::Synth(b));
        }
        if spec.starts_with("file:") {
            return crate::file::TraceFileWorkload::from_spec(spec)
                .map(|w| WorkloadSource::File(std::sync::Arc::new(w)))
                .map_err(|e| format!("cannot open {spec}: {e}"));
        }
        Err(format!(
            "unknown workload '{spec}' (expected a benchmark name or file:PATH[:dup|:interleave|:range])"
        ))
    }

    /// Display name: the benchmark's figure name, or the file spec.
    pub fn name(&self) -> String {
        match self {
            WorkloadSource::Synth(b) => b.name().to_string(),
            WorkloadSource::File(w) => format!("file:{}:{}", w.spec_path(), w.mode().tag()),
        }
    }

    /// Average CPI charged for gap instructions.
    pub fn avg_cpi(&self) -> f64 {
        match self {
            WorkloadSource::Synth(b) => b.avg_cpi(),
            WorkloadSource::File(w) => w.avg_cpi(),
        }
    }

    /// Builds the record stream for one core. `scale` applies to
    /// synthetic generators only; a file replays what was recorded.
    pub fn trace(&self, core: usize, cores: usize, scale: Scale) -> DynTrace {
        match self {
            WorkloadSource::Synth(b) => b.trace(core, scale),
            WorkloadSource::File(w) => w.trace(core, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_benchmark_once() {
        assert_eq!(Benchmark::ALL.len(), 11);
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::ALL.iter().filter(|&&x| x == b).count(), 1);
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("GEMSFDTD"), Some(Benchmark::GemsFdtd));
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn every_benchmark_generates_smoke_traces() {
        for b in Benchmark::ALL {
            let n = b.trace(0, Scale::Smoke).take(1000).count();
            assert_eq!(n, 1000, "{b} generator ended early");
        }
    }

    #[test]
    fn mix_rotates_spec_across_cores() {
        // Core i of mix must produce the same stream as SPEC[i] core i.
        for core in 0..8 {
            let mix: Vec<_> = Benchmark::Mix.trace(core, Scale::Smoke).take(20).collect();
            let direct: Vec<_> = Benchmark::SPEC[core]
                .trace(core, Scale::Smoke)
                .take(20)
                .collect();
            assert_eq!(mix, direct, "core {core}");
        }
    }

    #[test]
    fn cpi_values_are_plausible() {
        for b in Benchmark::ALL {
            let c = b.avg_cpi();
            assert!((1.0..=3.0).contains(&c), "{b}: {c}");
        }
        assert!(Benchmark::Mcf.avg_cpi() > Benchmark::Bwaves.avg_cpi());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Benchmark::CactusAdm), "cactusADM");
    }

    #[test]
    fn workload_source_parses_benchmarks_and_rejects_garbage() {
        match WorkloadSource::parse("mcf") {
            Ok(WorkloadSource::Synth(Benchmark::Mcf)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(WorkloadSource::parse("nope").is_err());
        assert!(WorkloadSource::parse("file:/does/not/exist.trace").is_err());
    }

    #[test]
    fn workload_source_replays_files() {
        use mem_trace::VecTrace;
        let path =
            std::env::temp_dir().join(format!("redhip-registry-{}.trace", std::process::id()));
        let t: VecTrace = (0..40u64)
            .map(|i| TraceRecord::load(0x400, i * 64))
            .collect();
        mem_trace::stream::write_v2_file(&path, t.iter(), 16).unwrap();
        let src = WorkloadSource::parse(&format!("file:{}:interleave", path.display())).unwrap();
        assert!(src.name().ends_with(":interleave"));
        assert_eq!(src.avg_cpi(), crate::file::DEFAULT_FILE_CPI);
        let core0: Vec<_> = src.trace(0, 2, Scale::Smoke).collect();
        assert_eq!(core0.len(), 20);
        assert_eq!(core0[1].addr, 2 * 64);
        let _ = std::fs::remove_file(&path);
    }
}
