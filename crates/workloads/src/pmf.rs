//! Probabilistic matrix factorization (`pmf` in the paper's figures).
//!
//! The paper runs a PMF algorithm on GraphLab in 8 processes. We implement
//! the algorithm's dominant kernel directly: stochastic gradient descent
//! over a ratings stream, updating user and item latent-factor rows. Item
//! popularity follows a Zipf law (as in real recommender data), so hot item
//! rows are reused while the user side scatters.

use crate::registry::DynTrace;
use crate::scale::Scale;
use mem_trace::record::{MemOp, TraceRecord};
use mem_trace::zipf::Zipf;
use mem_trace::Rng64;

const RATINGS_BASE: u64 = 0x0a_0000_0000;
const USER_BASE: u64 = 0x0a_4000_0000;
const ITEM_BASE: u64 = 0x0a_8000_0000;

/// Latent dimension (factors per row).
pub const FACTORS: u64 = 16;
/// Bytes per factor row (f64 features).
pub const ROW_BYTES: u64 = FACTORS * 8;

/// Lazily emits the SGD kernel's references.
pub struct PmfTrace {
    users: u64,
    item_zipf: Zipf,
    rng: Rng64,
    rating_idx: u64,
    buf: Vec<TraceRecord>,
    pos: usize,
}

impl PmfTrace {
    /// Builds the generator for `users` users and `items` items.
    pub fn new(users: u64, items: u64, seed: u64) -> Self {
        Self {
            users,
            item_zipf: Zipf::new(items, 1.05),
            rng: Rng64::seed_from_u64(seed),
            rating_idx: 0,
            buf: Vec::with_capacity(64),
            pos: 0,
        }
    }

    /// One SGD step: read the rating, dot-product both rows, write both
    /// rows' updated factors.
    fn step(&mut self) {
        let u = self.rng.gen_below(self.users);
        let i = self.item_zipf.sample(&mut self.rng) - 1;
        let user_row = USER_BASE + u * ROW_BYTES;
        let item_row = ITEM_BASE + i * ROW_BYTES;
        // Rating entries stream sequentially (12 B packed → 16 B aligned).
        self.buf.push(TraceRecord::new(
            0xa000,
            RATINGS_BASE + (self.rating_idx % (1 << 24)) * 16,
            MemOp::Load,
            1,
        ));
        self.rating_idx += 1;
        // Dot product: read both rows factor-pair by factor-pair.
        for f in (0..FACTORS).step_by(2) {
            self.buf
                .push(TraceRecord::new(0xa010, user_row + f * 8, MemOp::Load, 1));
            self.buf
                .push(TraceRecord::new(0xa014, item_row + f * 8, MemOp::Load, 2));
        }
        // Gradient update: write the first element of each cache line of
        // both rows (the whole line is dirtied either way).
        for line in 0..(ROW_BYTES / 64).max(1) {
            self.buf.push(TraceRecord::new(
                0xa020,
                user_row + line * 64,
                MemOp::Store,
                3,
            ));
            self.buf.push(TraceRecord::new(
                0xa024,
                item_row + line * 64,
                MemOp::Store,
                3,
            ));
        }
    }
}

impl Iterator for PmfTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.step();
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some(r)
    }
}

/// Builds the PMF trace for one process rank.
pub fn trace(core: usize, scale: Scale) -> DynTrace {
    let users = scale.count(32_768); // demo: 4 MB of user rows
    let items = scale.count(65_536); // demo: 8 MB of item rows
    let seed = 0x3f00 ^ (core as u64).wrapping_mul(0x2545_f491);
    Box::new(PmfTrace::new(users, items, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::stats::TraceStats;

    #[test]
    fn step_structure_loads_then_stores() {
        let mut p = PmfTrace::new(64, 64, 1);
        let recs: Vec<_> = (&mut p).take(21).collect();
        // 1 rating + 16 row loads + 4 row stores per step.
        assert_eq!(recs[0].op, MemOp::Load);
        assert_eq!(recs.iter().filter(|r| r.op.is_store()).count(), 4);
        // Row loads alternate user/item and share two lines each.
        assert_eq!(recs[1].pc, 0xa010);
        assert_eq!(recs[2].pc, 0xa014);
    }

    #[test]
    fn store_fraction_is_about_one_fifth() {
        let stats = TraceStats::measure(trace(0, Scale::Smoke), 50_000);
        assert!(
            stats.store_fraction() > 0.15 && stats.store_fraction() < 0.25,
            "store fraction {}",
            stats.store_fraction()
        );
    }

    #[test]
    fn row_reuse_gives_l1_band() {
        let stats = TraceStats::measure(trace(0, Scale::Demo), 200_000);
        // Within a step: 8 loads per 2-line row + line-granular stores hit.
        let reuse = stats.short_reuse_fraction();
        assert!(reuse > 0.5 && reuse < 0.95, "short reuse {reuse}");
    }

    #[test]
    fn demo_footprint_exceeds_llc() {
        let stats = TraceStats::measure(trace(0, Scale::Demo), 2_000_000);
        assert!(stats.footprint_bytes() > 6 << 20);
    }

    #[test]
    fn hot_items_get_reused() {
        let mut p = PmfTrace::new(1 << 14, 1 << 15, 9);
        let mut item_rows = std::collections::HashMap::new();
        for r in (&mut p).take(300_000) {
            if r.pc == 0xa014 {
                *item_rows.entry(r.addr & !(ROW_BYTES - 1)).or_insert(0u64) += 1;
            }
        }
        let mut counts: Vec<u64> = item_rows.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top: u64 = counts.iter().take(counts.len() / 100 + 1).sum();
        assert!(
            top as f64 / total as f64 > 0.05,
            "Zipf head too light: {}",
            top as f64 / total as f64
        );
    }
}
