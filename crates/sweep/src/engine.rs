//! The sweep engine: dedup, cost-aware scheduling, deterministic merge.

use crate::cache::ResultCache;
use crate::cell::CellSpec;
use crate::pool;
use sim::{RunResult, SimConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use workloads::{Benchmark, Scale};

/// Handle to one unique cell in a [`SweepPlan`]; index into the results.
pub type CellId = usize;

/// The whole figure set's job graph, enumerated up front and deduped by
/// canonical config+workload key: a cell requested by five figures is
/// planned (and simulated) once.
#[derive(Debug, Default)]
pub struct SweepPlan {
    cells: Vec<CellSpec>,
    by_key: HashMap<String, CellId>,
    logical_requests: u64,
    dedup_hits: u64,
}

impl SweepPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests one (config × benchmark × scale) cell, returning its id.
    /// A repeated request for an identical cell returns the existing id
    /// and counts as a dedup hit.
    pub fn cell(&mut self, cfg: &SimConfig, benchmark: Benchmark, scale: Scale) -> CellId {
        self.insert(CellSpec::new(cfg, benchmark, scale))
    }

    /// Requests one (config × trace file) cell — the file-backed analogue
    /// of [`cell`](Self::cell). The `Arc` shares one open mapping across
    /// every cell replaying the same file.
    pub fn cell_file(
        &mut self,
        cfg: &SimConfig,
        workload: &std::sync::Arc<workloads::TraceFileWorkload>,
    ) -> CellId {
        self.insert(CellSpec::file(cfg, std::sync::Arc::clone(workload)))
    }

    fn insert(&mut self, spec: CellSpec) -> CellId {
        self.logical_requests += 1;
        let key = spec.canonical_key();
        if let Some(&id) = self.by_key.get(&key) {
            self.dedup_hits += 1;
            return id;
        }
        let id = self.cells.len();
        self.cells.push(spec);
        self.by_key.insert(key, id);
        id
    }

    /// Unique cells planned so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing has been planned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Requests deduplicated away (logical requests minus unique cells).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// The planned cell specs, indexed by [`CellId`].
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }
}

/// What a sweep run did — the accounting the heartbeat and the acceptance
/// criteria are stated in. All totals count **unique cells**, never
/// logical (per-figure) requests, so jobs/s and ETA stay truthful when
/// figures share cells.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Unique cells in the plan.
    pub unique_cells: usize,
    /// Cell requests made by figures, before dedup.
    pub logical_requests: u64,
    /// Requests answered by an already-planned identical cell.
    pub dedup_hits: u64,
    /// Unique cells answered from the memoizing cache (memory or disk).
    pub cache_hits: u64,
    /// Unique cells actually simulated by the pool this run.
    pub simulated: u64,
    /// References simulated this run (excludes cache hits).
    pub refs_simulated: u64,
    /// Wall-clock of the run, seconds.
    pub wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
}

impl SweepStats {
    /// Aggregate simulation throughput over the whole pool, refs/s.
    pub fn aggregate_refs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.refs_simulated as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// One-line summary for the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} unique cells ({} requests, {} deduped), {} cached, {} simulated \
             ({:.1}M refs) in {:.2}s on {} job(s) — {:.2}M refs/s aggregate",
            self.unique_cells,
            self.logical_requests,
            self.dedup_hits,
            self.cache_hits,
            self.simulated,
            self.refs_simulated as f64 / 1e6,
            self.wall_secs,
            self.jobs,
            self.aggregate_refs_per_sec() / 1e6,
        )
    }
}

/// Results of a sweep run, indexed by [`CellId`]. Published into
/// pre-allocated slots by cell id, so the contents are byte-identical
/// regardless of worker count or completion order.
#[derive(Debug)]
pub struct SweepResults {
    results: Vec<RunResult>,
    /// Run accounting.
    pub stats: SweepStats,
}

impl SweepResults {
    /// The result for `id`.
    pub fn get(&self, id: CellId) -> &RunResult {
        &self.results[id]
    }

    /// All results in cell-id order.
    pub fn all(&self) -> &[RunResult] {
        &self.results
    }
}

/// A sweep failed (a cell panicked). The pool shuts down cleanly and the
/// first panic is carried here.
#[derive(Debug, Clone)]
pub struct SweepError {
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep failed: {}", self.message)
    }
}

impl std::error::Error for SweepError {}

/// Resolves the worker count: explicit override, else `REDHIP_JOBS`, else
/// all host cores.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("REDHIP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The engine: a worker count plus a memoizing cache, reusable across
/// many plans (the cache persists between runs — the second run of an
/// identical plan is all cache hits).
#[derive(Debug)]
pub struct SweepEngine {
    jobs: usize,
    intra_jobs: usize,
    cache: ResultCache,
    quiet: bool,
}

impl SweepEngine {
    /// Engine with `jobs` workers and a process-local cache.
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            intra_jobs: 1,
            cache: ResultCache::in_memory(),
            quiet: false,
        }
    }

    /// Gives every cell `intra_jobs` worker threads *inside* its run (the
    /// `sim::parallel` bound–weave engine — byte-identical results, so
    /// caches remain valid). To keep the thread budget at
    /// `sweep_jobs x intra_jobs <= available_parallelism`, the sweep's own
    /// worker count is reduced accordingly. Worthwhile when a plan has
    /// fewer (large) cells than the host has cores — the classic single
    /// straggler cell at the end of a sweep.
    pub fn with_intra_jobs(mut self, intra_jobs: usize) -> Self {
        self.intra_jobs = intra_jobs.max(1);
        if self.intra_jobs > 1 {
            let avail = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            self.jobs = self.jobs.min((avail / self.intra_jobs).max(1));
        }
        self
    }

    /// Replaces the cache (e.g. [`ResultCache::with_disk`]).
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = cache;
        self
    }

    /// Suppresses the stderr heartbeat.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Worker threads this engine schedules onto.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Worker threads each cell runs with internally.
    pub fn intra_jobs(&self) -> usize {
        self.intra_jobs
    }

    /// The cache, for hit-counter assertions.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Runs every cell of `plan` (cache hits excepted) and returns the
    /// deterministically merged results.
    ///
    /// Scheduling is cost-aware: cells are seeded to the pool longest
    /// expected first ([`CellSpec::cost`]), so the tail of the sweep is
    /// short cells, not one late-started straggler.
    pub fn run(&self, plan: &SweepPlan, label: &str) -> Result<SweepResults, SweepError> {
        let started = Instant::now();
        let n = plan.cells.len();
        let hits_before = self.cache.counters.hits();

        // Resolve cache hits up front; only misses enter the pool.
        let mut slots: Vec<Mutex<Option<RunResult>>> = Vec::with_capacity(n);
        let mut to_run: Vec<CellId> = Vec::new();
        for (id, spec) in plan.cells.iter().enumerate() {
            let cached = self
                .cache
                .lookup(&spec.canonical_key(), spec.content_hash());
            if cached.is_none() {
                to_run.push(id);
            }
            slots.push(Mutex::new(cached));
        }
        let cache_hits = self.cache.counters.hits() - hits_before;
        metrics::SWEEP_CACHE_HITS.add(cache_hits);
        metrics::SWEEP_CACHE_MISSES.add((n as u64).saturating_sub(cache_hits));

        // Longest-expected-cell-first; ties break by id so the seed order
        // (though not the results — those are keyed by id) is stable.
        to_run.sort_by_key(|&id| (std::cmp::Reverse(plan.cells[id].cost()), id));

        let simulated = to_run.len() as u64;
        metrics::SWEEP_CELLS_SIMULATED.add(simulated);
        let _sim_span = metrics::PHASE_SIMULATE.start();
        let ticks = AtomicU64::new(0);
        if !to_run.is_empty() {
            let mut heart = telemetry::Heartbeat::new(label, "cells", to_run.len() as u64);
            if self.quiet {
                heart = heart.silent();
            }
            let workers = self.jobs.min(to_run.len());
            let run_cell = |k: usize| {
                let id = to_run[k];
                let spec = &plan.cells[id];
                let result = spec.simulate_par(self.intra_jobs);
                self.cache.store(
                    &spec.canonical_key(),
                    spec.content_hash(),
                    &result,
                    Some(&spec.manifest()),
                );
                *slots[id].lock().expect("slot poisoned") = Some(result);
            };
            if workers <= 1 {
                // Sequential fast path: same order, no threads.
                for k in 0..to_run.len() {
                    run_cell(k);
                    ticks.fetch_add(1, Ordering::Relaxed);
                    heart.set_done(ticks.load(Ordering::Relaxed));
                }
            } else {
                let order: Vec<usize> = (0..to_run.len()).collect();
                pool::run_ordered(
                    workers,
                    &order,
                    &ticks,
                    |done| heart.set_done(done),
                    run_cell,
                )
                .map_err(|e| SweepError {
                    message: e.to_string(),
                })?;
            }
            heart.finish();
        }

        let results: Vec<RunResult> = slots
            .into_iter()
            .enumerate()
            .map(|(id, s)| {
                s.into_inner()
                    .expect("slot poisoned")
                    .unwrap_or_else(|| panic!("cell {id} produced no result"))
            })
            .collect();
        drop(_sim_span);
        let refs_simulated = to_run
            .iter()
            .map(|&id| results[id].total_refs())
            .sum::<u64>();
        metrics::SWEEP_REFS_SIMULATED.add(refs_simulated);

        Ok(SweepResults {
            stats: SweepStats {
                unique_cells: n,
                logical_requests: plan.logical_requests,
                dedup_hits: plan.dedup_hits,
                cache_hits,
                simulated,
                refs_simulated,
                wall_secs: started.elapsed().as_secs_f64(),
                jobs: self.jobs,
            },
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Mechanism;

    fn cfg(mechanism: Mechanism, refs: usize) -> SimConfig {
        let mut c = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
        c.refs_per_core = refs;
        c.recalib_period = Some(512);
        c
    }

    fn smoke_plan() -> SweepPlan {
        let mut p = SweepPlan::new();
        for m in [Mechanism::Base, Mechanism::Redhip, Mechanism::Cbf] {
            for b in [Benchmark::Mcf, Benchmark::Lbm] {
                p.cell(&cfg(m, 600), b, Scale::Smoke);
            }
        }
        p
    }

    #[test]
    fn dedup_collapses_repeated_requests() {
        let mut p = smoke_plan();
        assert_eq!(p.len(), 6);
        // A figure re-requesting the whole matrix adds nothing.
        let id = p.cell(&cfg(Mechanism::Base, 600), Benchmark::Mcf, Scale::Smoke);
        assert_eq!(id, 0);
        assert_eq!(p.len(), 6);
        assert_eq!(p.dedup_hits(), 1);
    }

    #[test]
    fn jobs1_and_jobs4_results_are_byte_identical() {
        use minijson::ToJson;
        let p1 = smoke_plan();
        let r1 = SweepEngine::new(1).quiet().run(&p1, "t").unwrap();
        let p4 = smoke_plan();
        let r4 = SweepEngine::new(4).quiet().run(&p4, "t").unwrap();
        assert_eq!(r1.all().len(), r4.all().len());
        for (a, b) in r1.all().iter().zip(r4.all()) {
            assert_eq!(a.to_json().pretty(), b.to_json().pretty());
        }
    }

    #[test]
    fn intra_jobs_results_are_byte_identical_and_budgeted() {
        use minijson::ToJson;
        let r1 = SweepEngine::new(1).quiet().run(&smoke_plan(), "t").unwrap();
        let engine = SweepEngine::new(2).with_intra_jobs(2).quiet();
        // The thread budget holds: sweep_jobs x intra_jobs <= host cores
        // (with a floor of one sweep worker).
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(engine.jobs() == 1 || engine.jobs() * engine.intra_jobs() <= avail);
        assert_eq!(engine.intra_jobs(), 2);
        let r2 = engine.run(&smoke_plan(), "t").unwrap();
        assert_eq!(r1.all().len(), r2.all().len());
        for (a, b) in r1.all().iter().zip(r2.all()) {
            assert_eq!(a.to_json().pretty(), b.to_json().pretty());
        }
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let engine = SweepEngine::new(2).quiet();
        let first = engine.run(&smoke_plan(), "t").unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.simulated, 6);
        let second = engine.run(&smoke_plan(), "t").unwrap();
        assert_eq!(second.stats.cache_hits, 6);
        assert_eq!(second.stats.simulated, 0);
        assert_eq!(second.stats.refs_simulated, 0);
    }

    #[test]
    fn stats_count_unique_cells_not_logical_requests() {
        let mut p = smoke_plan();
        for _ in 0..10 {
            p.cell(&cfg(Mechanism::Base, 600), Benchmark::Mcf, Scale::Smoke);
        }
        let r = SweepEngine::new(1).quiet().run(&p, "t").unwrap();
        assert_eq!(r.stats.unique_cells, 6);
        assert_eq!(r.stats.logical_requests, 16);
        assert_eq!(r.stats.dedup_hits, 10);
        assert_eq!(r.stats.simulated, 6);
        // refs accounting covers only what actually ran.
        let expected: u64 = r.all().iter().map(|x| x.total_refs()).sum();
        assert_eq!(r.stats.refs_simulated, expected);
    }

    #[test]
    fn empty_plan_runs() {
        let r = SweepEngine::new(4)
            .quiet()
            .run(&SweepPlan::new(), "t")
            .unwrap();
        assert_eq!(r.all().len(), 0);
        assert_eq!(r.stats.simulated, 0);
    }

    #[test]
    fn default_jobs_honors_env() {
        // Serialize env mutation within this test only.
        std::env::set_var("REDHIP_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        std::env::set_var("REDHIP_JOBS", "not-a-number");
        assert!(default_jobs() >= 1);
        std::env::remove_var("REDHIP_JOBS");
    }
}
