//! Work-stealing sweep engine: one pool, one job graph, memoized cells.
//!
//! The figure/ablation harness's heaviest workload is the full-figure
//! sweep: hundreds of embarrassingly-parallel (workload × mechanism ×
//! config) simulation cells. This crate schedules all of them as **one**
//! job graph on **one** persistent worker pool:
//!
//! * [`SweepPlan`] — figures enumerate their cells up front; identical
//!   cells (canonical `SimConfig`+workload key) are deduped, so the
//!   Fig 6/7 matrix computed once feeds every downstream figure.
//! * [`pool`] — an in-tree work-stealing pool (per-worker Chase–Lev
//!   deques plus a global injector; crossbeam was vendored out in PR 1)
//!   seeded longest-expected-cell-first ([`CellSpec::cost`]) to kill tail
//!   stragglers.
//! * [`ResultCache`] — memoized results, in-memory per process and
//!   optionally on disk under a versioned directory — the seed of the
//!   sweep server's shared cache.
//! * [`SweepResults`] — deterministic merge: results are published into
//!   pre-allocated slots by cell id, so outputs are byte-identical
//!   regardless of worker count.

pub mod cache;
pub mod cell;
pub mod engine;
pub mod pool;

pub use cache::{ResultCache, CACHE_SCHEMA, CACHE_VERSION};
pub use cell::{CellSource, CellSpec};
pub use engine::{
    default_jobs, CellId, SweepEngine, SweepError, SweepPlan, SweepResults, SweepStats,
};
pub use pool::PoolError;
