//! Re-export shim: the worker pool moved to the standalone `pool` crate so
//! the simulator's intra-run parallel scheduler (`sim::parallel`) can share
//! it without a dependency cycle (`sweep` depends on `sim`). Every
//! historical `sweep::pool::*` path keeps working through this module.

pub use ::pool::{run_ordered, PoolError};
