//! Memoizing result cache: in-memory for one process, optionally on disk.
//!
//! The disk layer is the seed of the sweep server's shared cache
//! (ROADMAP item 2): one JSON file per cell under
//! `<dir>/<CACHE_VERSION>/<hash>.json` carrying the full canonical key,
//! which is verified on load so a hash collision or a stale schema can
//! never serve the wrong result. Bump [`CACHE_VERSION`] whenever a change
//! affects golden outputs — old entries then simply stop resolving.

use minijson::{json, FromJson, ToJson};
use sim::RunResult;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache format/semantics version. Part of the on-disk path: bump it when
/// a simulator change intentionally alters results (the golden snapshots
/// will have been regenerated too) and every old entry is invalidated at
/// once.
pub const CACHE_VERSION: &str = "v1";

/// Schema tag inside every cache file.
pub const CACHE_SCHEMA: &str = "redhip-sweep-cache/v1";

/// Hit/miss counters (atomic: workers store from many threads).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Served from the in-process map.
    pub memory_hits: AtomicU64,
    /// Served from a disk file.
    pub disk_hits: AtomicU64,
    /// Not found anywhere (the cell was simulated).
    pub misses: AtomicU64,
    /// Results written to disk.
    pub disk_stores: AtomicU64,
}

impl CacheCounters {
    /// Total hits, memory + disk.
    pub fn hits(&self) -> u64 {
        self.memory_hits.load(Ordering::Relaxed) + self.disk_hits.load(Ordering::Relaxed)
    }
}

/// A memoizing map from canonical cell key to [`RunResult`].
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<String, RunResult>>,
    disk: Option<PathBuf>,
    /// Counters for dedup accounting and the acceptance tests.
    pub counters: CacheCounters,
}

impl ResultCache {
    /// Process-local cache only.
    pub fn in_memory() -> Self {
        Self {
            memory: Mutex::new(HashMap::new()),
            disk: None,
            counters: CacheCounters::default(),
        }
    }

    /// Cache backed by `dir` (the versioned subdirectory is appended
    /// here). The directory is created lazily on first store.
    pub fn with_disk(dir: PathBuf) -> Self {
        Self {
            memory: Mutex::new(HashMap::new()),
            disk: Some(dir.join(CACHE_VERSION)),
            counters: CacheCounters::default(),
        }
    }

    /// Whether a disk layer is configured.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    fn disk_path(&self, hash: u64) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|d| d.join(format!("{hash:016x}.json")))
    }

    /// Looks `key` up, memory first, then disk. A disk hit is promoted
    /// into memory.
    pub fn lookup(&self, key: &str, hash: u64) -> Option<RunResult> {
        if let Some(r) = self.memory.lock().expect("cache poisoned").get(key) {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(r.clone());
        }
        if let Some(path) = self.disk_path(hash) {
            if let Some(r) = load_entry(&path, key) {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.memory
                    .lock()
                    .expect("cache poisoned")
                    .insert(key.to_string(), r.clone());
                return Some(r);
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a freshly simulated result under `key`. When a manifest is
    /// supplied, its deterministic identity fields are embedded in the
    /// disk entry — [`load_entry`] ignores unknown members, so entries
    /// with and without one interoperate, and only
    /// [`metrics::RunManifest::to_json`]'s job-count-invariant fields go
    /// in (cache directories are byte-compared across `--jobs`).
    pub fn store(
        &self,
        key: &str,
        hash: u64,
        result: &RunResult,
        manifest: Option<&metrics::RunManifest>,
    ) {
        self.memory
            .lock()
            .expect("cache poisoned")
            .insert(key.to_string(), result.clone());
        if let Some(path) = self.disk_path(hash) {
            let mut doc = json!({
                "schema": CACHE_SCHEMA,
                "key": key,
                "result": result.to_json(),
            });
            if let Some(m) = manifest {
                doc.set("manifest", m.to_json());
            }
            if let Some(dir) = path.parent() {
                if std::fs::create_dir_all(dir).is_err() {
                    return; // cache is best-effort; the sweep still runs
                }
            }
            // Write-then-rename so a concurrent reader never sees a torn
            // file (two processes racing on the same cell write identical
            // bytes anyway).
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if std::fs::write(&tmp, doc.pretty()).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
                self.counters.disk_stores.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Loads one cache file, returning `None` (a miss) on any mismatch or
/// parse problem rather than failing the sweep.
fn load_entry(path: &std::path::Path, key: &str) -> Option<RunResult> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = minijson::parse(&text).ok()?;
    if doc.get("schema")?.as_str()? != CACHE_SCHEMA {
        return None;
    }
    if doc.get("key")?.as_str()? != key {
        return None; // hash collision or stale entry
    }
    RunResult::from_json(doc.get("result")?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSpec;
    use sim::{Mechanism, SimConfig};
    use workloads::{Benchmark, Scale};

    fn tiny_spec() -> CellSpec {
        let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), Mechanism::Redhip);
        cfg.refs_per_core = 800;
        cfg.recalib_period = Some(256);
        CellSpec::new(&cfg, Benchmark::Mcf, Scale::Smoke)
    }

    #[test]
    fn memory_roundtrip_counts_hits() {
        let cache = ResultCache::in_memory();
        let spec = tiny_spec();
        let key = spec.canonical_key();
        let hash = spec.content_hash();
        assert!(cache.lookup(&key, hash).is_none());
        let r = spec.simulate();
        cache.store(&key, hash, &r, None);
        let back = cache.lookup(&key, hash).expect("hit");
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(cache.counters.hits(), 1);
        assert_eq!(cache.counters.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_roundtrip_is_byte_exact() {
        let dir = std::env::temp_dir().join(format!("sweep-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec();
        let key = spec.canonical_key();
        let hash = spec.content_hash();
        let r = spec.simulate();
        {
            let cache = ResultCache::with_disk(dir.clone());
            cache.store(&key, hash, &r, Some(&spec.manifest()));
            assert_eq!(cache.counters.disk_stores.load(Ordering::Relaxed), 1);
        }
        // The entry embeds the deterministic manifest, and loaders that
        // don't know about it still resolve the result below.
        let file = dir.join(CACHE_VERSION).join(format!("{hash:016x}.json"));
        let text = std::fs::read_to_string(&file).expect("entry on disk");
        let doc = minijson::parse(&text).expect("entry parses");
        let manifest = doc.get("manifest").expect("manifest embedded");
        assert_eq!(
            manifest.get("schema").unwrap().as_str().unwrap(),
            "redhip-manifest/v1"
        );
        assert_eq!(
            manifest.get("mechanism").unwrap().as_str().unwrap(),
            "ReDHiP"
        );
        // A fresh cache (fresh process, conceptually) must rehydrate the
        // result so that its JSON re-serializes byte-identically — the
        // property the figure determinism guarantee rests on.
        let cache = ResultCache::with_disk(dir.clone());
        let back = cache.lookup(&key, hash).expect("disk hit");
        assert_eq!(cache.counters.disk_hits.load(Ordering::Relaxed), 1);
        assert_eq!(back.to_json().pretty(), r.to_json().pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_in_file_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("sweep-cache-collide-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec();
        let key = spec.canonical_key();
        let hash = spec.content_hash();
        let cache = ResultCache::with_disk(dir.clone());
        cache.store(&key, hash, &spec.simulate(), None);
        // Same hash file, different requested key → must not serve it.
        assert!(cache.lookup("some-other-key", hash).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
