//! One simulation cell of a sweep: (workload × mechanism × config).

use sim::{
    run_feeds, run_feeds_par, run_traces, run_traces_par, CoreFeed, IntraOptions, RunResult,
    SimConfig,
};
use std::sync::Arc;
use workloads::{Benchmark, Scale, TraceFileWorkload};

/// Stable tag for a workload scale, part of the canonical cell key.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Demo => "demo",
        Scale::Paper => "paper",
    }
}

/// Where a cell's per-core record streams come from.
#[derive(Debug, Clone)]
pub enum CellSource {
    /// A registry benchmark's kernel generators, seeded by (core, scale).
    Synth {
        /// Workload generating one trace per core.
        benchmark: Benchmark,
        /// Workload footprint scale.
        scale: Scale,
    },
    /// A recorded v2 trace file, replayed with bounded memory; the `Arc`
    /// shares one mapping across every cell and worker thread using it.
    File(Arc<TraceFileWorkload>),
}

/// A fully-specified simulation: everything `run_workload` needs, owned,
/// hashable, and executable on any worker thread.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Simulation configuration with `avg_cpi` already set for the
    /// workload (so the canonical key covers it).
    pub cfg: SimConfig,
    /// The workload driving each core.
    pub source: CellSource,
}

impl CellSpec {
    /// Builds a synthetic-workload spec, stamping the benchmark's CPI into
    /// the config the same way `bench::harness::run_workload` does.
    pub fn new(cfg: &SimConfig, benchmark: Benchmark, scale: Scale) -> Self {
        let mut cfg = cfg.clone();
        cfg.avg_cpi = benchmark.avg_cpi();
        Self {
            cfg,
            source: CellSource::Synth { benchmark, scale },
        }
    }

    /// Builds a file-backed spec, stamping the workload's CPI likewise.
    pub fn file(cfg: &SimConfig, workload: Arc<TraceFileWorkload>) -> Self {
        let mut cfg = cfg.clone();
        cfg.avg_cpi = workload.avg_cpi();
        Self {
            cfg,
            source: CellSource::File(workload),
        }
    }

    /// The canonical identity of this cell: workload, scale, and the full
    /// config serialization. Two cells with equal keys produce
    /// byte-identical results, so the key is what the dedup map and the
    /// result cache are keyed by. Synthetic keys keep their historical
    /// `name|scale|cfg` format (on-disk caches stay valid); file cells key
    /// on the file's identity tag, which covers path, shard mode, and the
    /// file's record/byte counts so a rewritten file misses the cache.
    pub fn canonical_key(&self) -> String {
        use minijson::ToJson;
        match &self.source {
            CellSource::Synth { benchmark, scale } => format!(
                "{}|{}|{}",
                benchmark.name(),
                scale_tag(*scale),
                self.cfg.to_json().dump()
            ),
            CellSource::File(w) => {
                format!("{}|{}", w.identity_tag(), self.cfg.to_json().dump())
            }
        }
    }

    /// 64-bit FNV-1a of the canonical key — the on-disk cache file name.
    /// Collisions are harmless: the cache stores the full key and verifies
    /// it on load.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.canonical_key().as_bytes())
    }

    /// Deterministic run manifest for this cell, embedded into cache
    /// entries and exportable via `--metrics`. Every field is derived
    /// from the cell's identity alone (never from job counts or wall
    /// clocks), so entries stay byte-identical across schedulers; the
    /// `sequential_fallback` flag records whether the configuration lies
    /// outside the bound–weave envelope and therefore always runs
    /// sequentially regardless of `--intra-jobs`.
    pub fn manifest(&self) -> metrics::RunManifest {
        let (workload, seed) = match &self.source {
            CellSource::Synth { benchmark, scale } => (
                benchmark.name().to_string(),
                format!("synth(core,{})", scale_tag(*scale)),
            ),
            CellSource::File(w) => (w.identity_tag(), "trace-file".to_string()),
        };
        metrics::RunManifest {
            mechanism: self.cfg.mechanism.name().to_string(),
            predictor_spec: sim::predictor::spec_string(&self.cfg),
            workload,
            seed,
            config_hash: self.content_hash(),
            sequential_fallback: !sim::parallel_supported(&self.cfg),
        }
    }

    /// Expected cost, for longest-cell-first scheduling: simulated
    /// references per core times core count. Relative cost is what the
    /// scheduler needs; refs dominate wall time across mechanisms.
    pub fn cost(&self) -> u64 {
        self.cfg.refs_per_core as u64 * self.cfg.platform.cores as u64
    }

    /// Runs the cell to completion on the calling thread. Deterministic:
    /// synthetic generators are seeded from (core, scale) only, and files
    /// replay fixed bytes.
    pub fn simulate(&self) -> RunResult {
        let cores = self.cfg.platform.cores;
        match &self.source {
            CellSource::Synth { benchmark, scale } => {
                let traces = (0..cores)
                    .map(|core| benchmark.trace(core, *scale))
                    .collect();
                run_traces(&self.cfg, traces)
            }
            CellSource::File(w) => {
                let feeds = (0..cores)
                    .map(|core| Box::new(w.feed(core, cores)) as CoreFeed)
                    .collect();
                run_feeds(&self.cfg, feeds)
            }
        }
    }

    /// Like [`CellSpec::simulate`], but with `intra_jobs` worker threads
    /// inside the run (the `sim::parallel` bound–weave engine).
    /// Byte-identical to [`CellSpec::simulate`] at every thread count —
    /// the result cache stays valid across `intra_jobs` settings — and
    /// falls back to it when `intra_jobs <= 1` or the configuration is
    /// outside the engine's envelope.
    pub fn simulate_par(&self, intra_jobs: usize) -> RunResult {
        if intra_jobs <= 1 {
            return self.simulate();
        }
        let opts = IntraOptions::with_jobs(intra_jobs);
        let cores = self.cfg.platform.cores;
        match &self.source {
            CellSource::Synth { benchmark, scale } => {
                let traces = (0..cores)
                    .map(|core| benchmark.trace(core, *scale))
                    .collect();
                run_traces_par(&self.cfg, traces, &opts)
            }
            CellSource::File(w) => {
                let feeds = (0..cores)
                    .map(|core| Box::new(w.feed(core, cores)) as CoreFeed)
                    .collect();
                run_feeds_par(&self.cfg, feeds, &opts)
            }
        }
    }
}

/// FNV-1a, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Mechanism;

    fn demo_cfg(mechanism: Mechanism) -> SimConfig {
        let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
        cfg.refs_per_core = 1_000;
        cfg
    }

    #[test]
    fn identical_specs_share_key_and_hash() {
        let a = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        let b = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn key_separates_mechanism_workload_and_scale() {
        let base = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Mcf, Scale::Smoke);
        let red = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        let lbm = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Lbm, Scale::Smoke);
        let demo = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Mcf, Scale::Demo);
        let keys = [
            base.canonical_key(),
            red.canonical_key(),
            lbm.canonical_key(),
            demo.canonical_key(),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn predictor_parameters_never_alias_in_key_hash_or_manifest() {
        // Regression: two LevelPred cells differing only in confidence
        // threshold once hashed to the same cache slot because the key
        // omitted predictor parameters. The canonical key, content hash,
        // and manifest spec must all separate them.
        let mut lo = demo_cfg(Mechanism::LevelPred);
        lo.level_pred.conf_threshold = 2;
        let mut hi = demo_cfg(Mechanism::LevelPred);
        hi.level_pred.conf_threshold = 6;
        let a = CellSpec::new(&lo, Benchmark::Mcf, Scale::Smoke);
        let b = CellSpec::new(&hi, Benchmark::Mcf, Scale::Smoke);
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.manifest().predictor_spec, b.manifest().predictor_spec);
        assert_eq!(
            a.manifest().predictor_spec,
            "level-pred:conf=2,max=3,penalty=8"
        );
    }

    #[test]
    fn cost_scales_with_refs_and_cores() {
        let mut cfg = demo_cfg(Mechanism::Base);
        cfg.refs_per_core = 500;
        let spec = CellSpec::new(&cfg, Benchmark::Mcf, Scale::Smoke);
        assert_eq!(spec.cost(), 500 * cfg.platform.cores as u64);
    }

    #[test]
    fn synth_key_format_is_pinned() {
        // On-disk caches from earlier versions are keyed by this exact
        // format; changing it silently invalidates them.
        let spec = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Mcf, Scale::Smoke);
        assert!(
            spec.canonical_key().starts_with("mcf|smoke|{"),
            "{}",
            spec.canonical_key()
        );
    }

    #[test]
    fn file_cells_key_dedup_and_simulate_deterministically() {
        use mem_trace::record::TraceRecord;
        use mem_trace::VecTrace;
        use minijson::ToJson;
        let path =
            std::env::temp_dir().join(format!("redhip-sweepcell-{}.trace", std::process::id()));
        let t: VecTrace = (0..4000u64)
            .map(|i| TraceRecord::load(0x400 + i % 9, (i * 2897) % (1 << 22)))
            .collect();
        mem_trace::stream::write_v2_file(&path, t.iter(), 256).unwrap();
        let w = std::sync::Arc::new(
            workloads::TraceFileWorkload::from_spec(&format!("file:{}:interleave", path.display()))
                .unwrap(),
        );
        let cfg = demo_cfg(Mechanism::Redhip);
        let a = CellSpec::file(&cfg, Arc::clone(&w));
        let b = CellSpec::file(&cfg, Arc::clone(&w));
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert!(a.canonical_key().contains("interleave"));
        assert_eq!(a.cfg.avg_cpi, w.avg_cpi());

        let mut plan = crate::SweepPlan::new();
        let id1 = plan.cell_file(&cfg, &w);
        let id2 = plan.cell_file(&cfg, &w);
        assert_eq!(id1, id2);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.dedup_hits(), 1);

        let r1 = a.simulate();
        let r2 = b.simulate();
        assert_eq!(r1.to_json().pretty(), r2.to_json().pretty());
        assert!(r1.total_refs() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
