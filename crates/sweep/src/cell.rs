//! One simulation cell of a sweep: (workload × mechanism × config).

use sim::{run_traces, RunResult, SimConfig};
use workloads::{Benchmark, Scale};

/// Stable tag for a workload scale, part of the canonical cell key.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Demo => "demo",
        Scale::Paper => "paper",
    }
}

/// A fully-specified simulation: everything `run_workload` needs, owned,
/// hashable, and executable on any worker thread.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Simulation configuration with `avg_cpi` already set for the
    /// benchmark (so the canonical key covers it).
    pub cfg: SimConfig,
    /// Workload generating one trace per core.
    pub benchmark: Benchmark,
    /// Workload footprint scale.
    pub scale: Scale,
}

impl CellSpec {
    /// Builds the spec, stamping the benchmark's CPI into the config the
    /// same way `bench::harness::run_workload` does.
    pub fn new(cfg: &SimConfig, benchmark: Benchmark, scale: Scale) -> Self {
        let mut cfg = cfg.clone();
        cfg.avg_cpi = benchmark.avg_cpi();
        Self {
            cfg,
            benchmark,
            scale,
        }
    }

    /// The canonical identity of this cell: workload, scale, and the full
    /// config serialization. Two cells with equal keys produce
    /// byte-identical results, so the key is what the dedup map and the
    /// result cache are keyed by.
    pub fn canonical_key(&self) -> String {
        use minijson::ToJson;
        format!(
            "{}|{}|{}",
            self.benchmark.name(),
            scale_tag(self.scale),
            self.cfg.to_json().dump()
        )
    }

    /// 64-bit FNV-1a of the canonical key — the on-disk cache file name.
    /// Collisions are harmless: the cache stores the full key and verifies
    /// it on load.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.canonical_key().as_bytes())
    }

    /// Expected cost, for longest-cell-first scheduling: simulated
    /// references per core times core count. Relative cost is what the
    /// scheduler needs; refs dominate wall time across mechanisms.
    pub fn cost(&self) -> u64 {
        self.cfg.refs_per_core as u64 * self.cfg.platform.cores as u64
    }

    /// Runs the cell to completion on the calling thread. Deterministic:
    /// trace generators are seeded from (core, scale) only.
    pub fn simulate(&self) -> RunResult {
        let traces = (0..self.cfg.platform.cores)
            .map(|core| self.benchmark.trace(core, self.scale))
            .collect();
        run_traces(&self.cfg, traces)
    }
}

/// FNV-1a, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Mechanism;

    fn demo_cfg(mechanism: Mechanism) -> SimConfig {
        let mut cfg = SimConfig::new(energy_model::presets::demo_scale(), mechanism);
        cfg.refs_per_core = 1_000;
        cfg
    }

    #[test]
    fn identical_specs_share_key_and_hash() {
        let a = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        let b = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn key_separates_mechanism_workload_and_scale() {
        let base = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Mcf, Scale::Smoke);
        let red = CellSpec::new(&demo_cfg(Mechanism::Redhip), Benchmark::Mcf, Scale::Smoke);
        let lbm = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Lbm, Scale::Smoke);
        let demo = CellSpec::new(&demo_cfg(Mechanism::Base), Benchmark::Mcf, Scale::Demo);
        let keys = [
            base.canonical_key(),
            red.canonical_key(),
            lbm.canonical_key(),
            demo.canonical_key(),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn cost_scales_with_refs_and_cores() {
        let mut cfg = demo_cfg(Mechanism::Base);
        cfg.refs_per_core = 500;
        let spec = CellSpec::new(&cfg, Benchmark::Mcf, Scale::Smoke);
        assert_eq!(spec.cost(), 500 * cfg.platform.cores as u64);
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
