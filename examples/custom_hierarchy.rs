//! Driving the low-level substrate directly: build a custom three-level
//! exclusive hierarchy, attach a hand-rolled prediction table, and process
//! a synthetic stream one access at a time.
//!
//! This is the API the `sim` crate is built on — use it when you need a
//! hierarchy the high-level `SimConfig` doesn't describe.
//!
//! ```sh
//! cargo run --release --example custom_hierarchy
//! ```

use redhip_repro::cache_sim::{CacheConfig, Traversal};
use redhip_repro::mem_trace::synth::{PointerChase, Region, SequentialStream, WeightedMix};
use redhip_repro::prelude::*;

fn main() {
    // A 2-core, 3-level exclusive hierarchy with a tree-PLRU L1.
    let config = HierarchyConfig {
        cores: 2,
        private_levels: vec![
            CacheConfig {
                capacity_bytes: 16 << 10,
                assoc: 4,
                block_bytes: 64,
                policy: ReplacementPolicy::TreePlru,
            },
            CacheConfig::lru(128 << 10, 8, 64),
        ],
        shared_llc: CacheConfig::lru(1 << 20, 16, 64),
        policy: InclusionPolicy::Exclusive,
    };
    let mut hierarchy = DeepHierarchy::new(&config);
    let llc_level = hierarchy.llc_level();

    // One table per level below L1 (the paper's §III-C prescription for
    // exclusive hierarchies), here just for the LLC to keep things short.
    let mut table = PredictionTable::from_capacity_bytes(8 << 10);

    // Two different synthetic programs.
    let mut streams: Vec<Box<dyn Iterator<Item = TraceRecord> + Send>> = vec![
        Box::new(WeightedMix::new(
            vec![
                Box::new(SequentialStream::new(
                    Region::new(0, 4 << 20),
                    8,
                    0x100,
                    4,
                    2,
                )),
                Box::new(PointerChase::new(1 << 32, 50_000, 64, 7, 0x200, 2)),
            ],
            &[0.6, 0.4],
            1,
        )),
        Box::new(SequentialStream::new(
            Region::new(1 << 40, 8 << 20),
            8,
            0x300,
            0,
            1,
        )),
    ];

    let mut t = Traversal::new();
    let mut lookups = [0u64; 3];
    let mut bypass_hits = 0u64; // LLC lookups the table would have skipped
    for step in 0..400_000usize {
        let core = step % 2;
        let rec = streams[core].next().expect("infinite stream");
        let block = rec.addr >> 6;

        t.clear();
        if !hierarchy.access_first(core, block, rec.op.is_store(), &mut t) {
            let mut hit = false;
            for lvl in 1..hierarchy.levels() {
                // Consult the LLC table before paying its lookup.
                if lvl == llc_level && table.predict(block) == Prediction::Absent {
                    bypass_hits += 1;
                    break;
                }
                lookups[lvl as usize - 1] += 1;
                if hierarchy.lookup(core, lvl, block, &mut t) {
                    hierarchy.promote(core, lvl, block, rec.op.is_store(), &mut t);
                    hit = true;
                    break;
                }
            }
            if !hit {
                hierarchy.fill_from_memory(core, block, rec.op.is_store(), &mut t);
            }
        }
        hierarchy.absorb_stats(&t);
        // Keep the table in sync with LLC insertions.
        for b in t.inserted_at(llc_level) {
            table.on_fill(b);
        }
        // Recalibrate occasionally from the LLC tag array.
        if step % 100_000 == 99_999 {
            table.recalibrate_from(hierarchy.llc().resident_blocks());
        }
    }

    hierarchy
        .check_invariants()
        .expect("exclusive invariant must hold");
    let stats = hierarchy.stats();
    println!("custom 3-level exclusive hierarchy, 400k accesses on 2 cores");
    for (i, l) in stats.levels.iter().enumerate() {
        println!(
            "L{}: {:>7} lookups, hit rate {:>5.1}%, {:>6} evictions",
            i + 1,
            l.lookups,
            l.hit_rate() * 100.0,
            l.evictions
        );
    }
    println!("LLC lookups skipped by the 8 KB prediction table: {bypass_hits}");
    println!("exclusive inclusion invariant verified ✓");
}
