//! Graph analytics on a deep hierarchy: the paper's Graph500 workload.
//!
//! Generates an RMAT graph, characterizes the BFS kernel's memory stream,
//! then shows what ReDHiP does for a workload whose frontier scatters
//! defeat every cache level.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use redhip_repro::mem_trace::stats::TraceStats;
use redhip_repro::prelude::*;
use redhip_repro::workloads::graph500::CsrGraph;

fn main() {
    // Build the graph the workload uses and describe it.
    let g = CsrGraph::rmat(15, 16, 42);
    println!(
        "RMAT graph: 2^15 = {} vertices, {} directed edges",
        g.n(),
        g.m()
    );
    let mut degrees: Vec<u64> = g.xadj.windows(2).map(|w| w[1] - w[0]).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "degree skew: max {}, median {}, top-1% of vertices hold {:.1}% of edges",
        degrees[0],
        degrees[g.n() / 2],
        degrees.iter().take(g.n() / 100).sum::<u64>() as f64 / g.m() as f64 * 100.0
    );

    // Characterize the BFS address stream itself.
    let stats = TraceStats::measure(Benchmark::Blas.trace(0, Scale::Demo), 400_000);
    println!("\nBFS kernel stream (400k refs of rank 0):");
    println!(
        "  footprint:            {:.1} MB",
        stats.footprint_bytes() as f64 / 1e6
    );
    println!(
        "  store fraction:       {:.1}%",
        stats.store_fraction() * 100.0
    );
    println!(
        "  stride-predictable:   {:.1}%",
        stats.stride_predictability() * 100.0
    );
    println!(
        "  short-range reuse:    {:.1}%",
        stats.short_reuse_fraction() * 100.0
    );

    // Run 8 BFS ranks under Base and ReDHiP.
    let refs = 150_000;
    let mut results = Vec::new();
    for mech in [Mechanism::Base, Mechanism::Redhip] {
        let mut cfg = SimConfig::new(demo_scale(), mech);
        cfg.refs_per_core = refs;
        cfg.avg_cpi = Benchmark::Blas.avg_cpi();
        let traces = (0..cfg.platform.cores)
            .map(|core| Benchmark::Blas.trace(core, Scale::Demo))
            .collect();
        results.push(run_traces(&cfg, traces));
    }
    let (base, redhip) = (&results[0], &results[1]);
    let c = Comparison::new(base, redhip);
    println!("\n8 BFS ranks, {refs} refs/core:");
    println!(
        "  Base:   {} cycles, hit rates L1 {:.0}% L2 {:.0}% L3 {:.0}% L4 {:.0}%",
        base.cycles,
        base.hit_rate(0) * 100.0,
        base.hit_rate(1) * 100.0,
        base.hit_rate(2) * 100.0,
        base.hit_rate(3) * 100.0
    );
    println!(
        "  ReDHiP: {} cycles, {} bypassed lookups",
        redhip.cycles, redhip.prediction.bypasses
    );
    println!(
        "  → {:+.1}% speed, {:+.1}% dynamic energy saved",
        c.speedup() * 100.0,
        c.dynamic_saving() * 100.0
    );
}
