//! Trace capture, persistence, and locality analysis.
//!
//! Records a slice of the mcf workload to the binary trace format, reads it
//! back, verifies the round trip, and runs exact reuse-distance analysis —
//! the methodology used to validate every workload generator in this
//! reproduction (and the way you would analyse your *own* traces before
//! feeding them to the simulator).
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use redhip_repro::mem_trace::codec;
use redhip_repro::mem_trace::reuse::ReuseHistogram;
use redhip_repro::mem_trace::stats::TraceStats;
use redhip_repro::mem_trace::VecTrace;
use redhip_repro::prelude::*;

fn main() {
    // 1. Capture 200k references of mcf into an owned trace.
    let trace = VecTrace::collect_from(Benchmark::Mcf.trace(0, Scale::Smoke), 200_000);
    println!("captured {} references of mcf (rank 0)", trace.len());

    // 2. Persist and reload through the binary codec.
    let bytes = codec::encode(&trace);
    println!(
        "encoded: {} bytes ({} B/record incl. header)",
        bytes.len(),
        bytes.len() / trace.len()
    );
    let reloaded = codec::decode(&bytes).expect("well-formed trace");
    assert_eq!(reloaded, trace, "lossless round trip");
    println!("decode verified: bit-exact round trip ✓");

    // 3. Characterize the stream.
    let stats = TraceStats::measure(trace.iter(), trace.len());
    println!("\nstream character:");
    println!(
        "  footprint          : {:.2} MB",
        stats.footprint_bytes() as f64 / 1e6
    );
    println!(
        "  store fraction     : {:.1}%",
        stats.store_fraction() * 100.0
    );
    println!(
        "  stride predictable : {:.1}%",
        stats.stride_predictability() * 100.0
    );
    println!("  distinct PCs       : {}", stats.distinct_pcs);

    // 4. Exact reuse-distance analysis → LRU hit rates at the demo-scale
    //    cache sizes (fully-associative bound).
    let hist = ReuseHistogram::measure(trace.iter(), trace.len());
    println!("\nreuse-distance profile:");
    println!(
        "  compulsory misses  : {:.1}%",
        hist.cold_fraction() * 100.0
    );
    match hist.median_distance_bound() {
        Some(0) => println!("  median reuse dist  : 0 (same-line reuse dominates)"),
        Some(m) => println!("  median reuse dist  : < {m} blocks"),
        None => println!("  median reuse dist  : n/a (pure streaming)"),
    }
    println!("  predicted fully-associative LRU hit rate:");
    for (label, lines) in [
        ("L1-sized  (32 KB)", 512usize),
        ("L2-sized (256 KB)", 4096),
        ("L3-sized (512 KB)", 8192),
    ] {
        println!("    {label}: {:.1}%", hist.lru_hit_rate(lines) * 100.0);
    }
    println!(
        "\nthese bounds are what the workload tests assert against: a generator whose\n\
         reuse profile drifts from its benchmark's published locality gets caught here."
    );
}
