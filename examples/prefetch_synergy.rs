//! The §V-C experiment in miniature: stride prefetching and ReDHiP are
//! complementary — prefetching accelerates the predictable streams, ReDHiP
//! cheapens the unpredictable misses, and ReDHiP also filters the
//! prefetcher's own wasted lookups.
//!
//! ```sh
//! cargo run --release --example prefetch_synergy
//! ```

use redhip_repro::prelude::*;

fn run(mechanism: Mechanism, prefetch: bool, refs: usize) -> RunResult {
    let mut cfg = SimConfig::new(demo_scale(), mechanism);
    cfg.refs_per_core = refs;
    cfg.avg_cpi = Benchmark::Bwaves.avg_cpi();
    if prefetch {
        cfg.prefetch = Some(StrideConfig::default());
    }
    let traces = (0..cfg.platform.cores)
        .map(|core| Benchmark::Bwaves.trace(core, Scale::Demo))
        .collect();
    run_traces(&cfg, traces)
}

fn main() {
    let refs = 150_000;
    println!("bwaves (stride-friendly CFD), 8 cores, {refs} refs/core\n");

    let base = run(Mechanism::Base, false, refs);
    let configs = [
        ("SP only", Mechanism::Base, true),
        ("ReDHiP only", Mechanism::Redhip, false),
        ("SP+ReDHiP", Mechanism::Redhip, true),
    ];

    println!(
        "{:<12} {:>9} {:>11} {:>9} {:>10} {:>10}",
        "config", "speedup", "dyn energy", "issued", "useful", "filtered"
    );
    for (name, mech, pf) in configs {
        let r = run(mech, pf, refs);
        let c = Comparison::new(&base, &r);
        println!(
            "{:<12} {:>8.1}% {:>11.3} {:>9} {:>10} {:>10}",
            name,
            c.speedup() * 100.0,
            c.dynamic_ratio(),
            r.prefetch.issued,
            r.prefetch.useful,
            r.prefetch.predictor_filtered,
        );
    }
    println!(
        "\nthe paper's reading: prefetching buys latency at an energy premium; ReDHiP\n\
         recovers the premium by bypassing the hierarchy for prefetches (and demand\n\
         misses) that would find nothing on chip — 'filtered' counts those."
    );
}
