//! Telemetry timeline: watch prediction accuracy saw-tooth around
//! recalibration events (the temporal dynamic behind the paper's
//! Figs. 9-12).
//!
//! ```sh
//! cargo run --release --example telemetry_timeline
//! ```
//!
//! A `WindowedCollector` rides along with the simulation and closes a
//! window every 1 000 references. On a drifting workload the prediction
//! table goes stale between recalibrations — bits set for long-evicted
//! lines turn into false positives — so per-window accuracy decays, then
//! snaps back each time the table is rebuilt from cache contents.

use redhip_repro::prelude::*;

/// Uniform random references over a region twice the LLC: every miss
/// fills one line and evicts another whose table bit goes stale.
fn drift_trace(region_blocks: u64) -> CoreTrace {
    Box::new((0..u64::MAX).map(move |i| {
        let mut z = i
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 31;
        TraceRecord::new(
            0x400,
            0x4000_0000 + (z % region_blocks) * 64,
            MemOp::Load,
            1,
        )
    }))
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() {
    // Demo platform with the LLC shrunk to 1 MB (16 K lines) and a single
    // core, so the eviction churn that drives staleness happens within a
    // few seconds of simulation.
    let mut platform = demo_scale();
    platform.cores = 1;
    platform.levels.last_mut().unwrap().capacity_bytes = 1 << 20;
    let llc_lines = platform.llc().capacity_bytes / 64;

    let mut cfg = SimConfig::new(platform, Mechanism::Redhip);
    cfg.refs_per_core = 48_000;
    cfg.recalib_period = Some(8_000);

    println!(
        "drifting workload over {} blocks against a {}-line LLC, recalibrating every {} refs\n",
        2 * llc_lines,
        llc_lines,
        cfg.recalib_period.unwrap()
    );

    let collector = WindowedCollector::new(1_000, cfg.platform.levels.len());
    let (result, obs) = run_traces_with(&cfg, vec![drift_trace(2 * llc_lines)], collector);

    // Chronological walk over the stream: windows as accuracy bars,
    // recalibrations as markers. The saw-tooth is the point: accuracy
    // drifts down within an interval and recovers at each marker.
    println!("  window   accuracy  fp/window  (60-char bar spans 0.85 .. 1.00)");
    for rec in obs.records() {
        match rec {
            TelemetryRecord::Window(w) => {
                let acc = w.accuracy();
                let frac = (acc - 0.85) / 0.15;
                println!(
                    "  {:>6}   {:.4}    {:>5}      |{}|",
                    w.index,
                    acc,
                    w.false_positives,
                    bar(frac, 60)
                );
            }
            TelemetryRecord::Recalib(m) => {
                println!(
                    "  ---- recalibration {} (stall {} cycles, {:.1} uJ) ----",
                    m.index,
                    m.stall_cycles,
                    m.energy_nj * 1e-3
                );
            }
        }
    }

    let p = &result.prediction;
    println!(
        "\ntotals: {} lookups, {} bypasses, {} walk hits, {} false positives, {} recalibrations",
        p.lookups, p.bypasses, p.walk_hits, p.false_positives, p.recalibrations
    );
    println!(
        "overall accuracy {:.4}, miss coverage {:.4}",
        p.accuracy(),
        p.miss_coverage()
    );
}
