//! Design-space exploration: prediction-table size × recalibration period.
//!
//! Reproduces the spirit of the paper's Figures 11 and 12 on a single
//! workload as a 2-D grid, showing the accuracy/overhead tradeoff the
//! paper's §V-B sensitivity analysis navigates.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use redhip_repro::prelude::*;

fn run(pt_bytes: Option<u64>, period: Option<u64>, refs: usize, base: bool) -> RunResult {
    let mech = if base {
        Mechanism::Base
    } else {
        Mechanism::Redhip
    };
    let mut cfg = SimConfig::new(demo_scale(), mech);
    cfg.refs_per_core = refs;
    cfg.avg_cpi = Benchmark::Astar.avg_cpi();
    cfg.pt_bytes = pt_bytes;
    cfg.recalib_period = period;
    // Like the paper's sensitivity study, isolate table accuracy from the
    // (small) prediction overhead.
    cfg.count_prediction_overhead = false;
    let traces = (0..cfg.platform.cores)
        .map(|core| Benchmark::Astar.trace(core, Scale::Demo))
        .collect();
    run_traces(&cfg, traces)
}

fn main() {
    let refs = 120_000;
    let default_pt = demo_scale().predictor.size_bytes;
    let sizes = [default_pt * 2, default_pt, default_pt / 2, default_pt / 8];
    let periods: [Option<u64>; 4] = [Some(8_192), Some(65_536), Some(524_288), None];

    println!("astar, 8 cores, {refs} refs/core — normalized dynamic energy");
    println!("(rows: PT size; columns: recalibration period in L1 misses)\n");

    let base = run(None, None, refs, true);

    print!("{:>10}", "PT \\ period");
    for p in &periods {
        match p {
            Some(v) => print!("{v:>10}"),
            None => print!("{:>10}", "never"),
        }
    }
    println!();
    for &size in &sizes {
        print!("{:>9}K", size >> 10);
        for &period in &periods {
            let r = run(Some(size), period, refs, false);
            let c = Comparison::new(&base, &r);
            print!("{:>10.3}", c.dynamic_ratio());
        }
        println!();
    }
    println!(
        "\nreading the grid: energy falls with larger tables (fewer aliases) and more frequent\n\
         recalibration (less staleness); the paper picks the knee — 0.78% of LLC, period 1M\n\
         misses (scaled here) — where further spending buys almost nothing."
    );
}
