//! Quickstart: run one workload under Base and ReDHiP and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redhip_repro::prelude::*;

fn run(mechanism: Mechanism, refs: usize) -> RunResult {
    // The demo-scale platform: Table I with L3/L4/PT shrunk 8× so this
    // example finishes in seconds (see energy_model::presets).
    let mut cfg = SimConfig::new(demo_scale(), mechanism);
    cfg.refs_per_core = refs;
    cfg.avg_cpi = Benchmark::Mcf.avg_cpi();
    let traces = (0..cfg.platform.cores)
        .map(|core| Benchmark::Mcf.trace(core, Scale::Demo))
        .collect();
    run_traces(&cfg, traces)
}

fn main() {
    let refs = 200_000;
    println!("simulating mcf on 8 cores, {refs} references/core ...");

    let base = run(Mechanism::Base, refs);
    let redhip = run(Mechanism::Redhip, refs);
    let c = Comparison::new(&base, &redhip);

    println!("\n--- Base ---");
    println!("cycles: {}", base.cycles);
    for lvl in 0..4 {
        println!("L{} hit rate: {:.1}%", lvl + 1, base.hit_rate(lvl) * 100.0);
    }
    println!(
        "dynamic energy: {:.3} mJ",
        base.energy.total_dynamic_j() * 1e3
    );

    println!("\n--- ReDHiP ---");
    println!("cycles: {}", redhip.cycles);
    println!(
        "predictor: {} lookups, {} bypasses ({:.1}% of true LLC misses caught), {} recalibrations",
        redhip.prediction.lookups,
        redhip.prediction.bypasses,
        redhip.prediction.miss_coverage() * 100.0,
        redhip.prediction.recalibrations,
    );
    println!(
        "dynamic energy: {:.3} mJ",
        redhip.energy.total_dynamic_j() * 1e3
    );

    println!("\n--- ReDHiP vs Base ---");
    println!("speedup:              {:+.1}%", c.speedup() * 100.0);
    println!("dynamic energy saved: {:+.1}%", c.dynamic_saving() * 100.0);
    println!("total energy saved:   {:+.1}%", c.total_saving() * 100.0);
    println!("perf-energy metric:   {:.3}", c.perf_energy_metric());
}
